//! Property-based tests on the core invariants: canonical o-values, type
//! normalization, subtyping soundness, engine agreement, translation
//! round-trips, and determinacy.

#![deny(deprecated)]

use iql::model::types::{ClassMap, EnumUniverse};
use iql::model::{Oid, OidGen};
use iql::prelude::*;
use proptest::prelude::*;
use proptest::strategy::Strategy;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Random oid-free o-values of bounded depth.
fn arb_pure_ovalue() -> impl Strategy<Value = OValue> {
    let leaf = prop_oneof![
        (0i64..5).prop_map(OValue::int),
        "[a-c]{1,2}".prop_map(|s| OValue::str(&s)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(OValue::set),
            prop::collection::vec(inner, 0..3).prop_map(|vs| {
                OValue::tuple(
                    vs.into_iter()
                        .enumerate()
                        .map(|(i, v)| (format!("f{i}").as_str().into(), v))
                        .collect::<Vec<(AttrName, OValue)>>(),
                )
            }),
        ]
    })
}

/// Random o-values possibly mentioning oids o0..o3.
fn arb_ovalue_with_oids() -> impl Strategy<Value = OValue> {
    let leaf = prop_oneof![
        (0i64..5).prop_map(OValue::int),
        (0u64..4).prop_map(|i| OValue::oid(Oid::from_raw(i))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(OValue::set),
            prop::collection::vec(inner, 0..3).prop_map(|vs| {
                OValue::tuple(
                    vs.into_iter()
                        .enumerate()
                        .map(|(i, v)| (format!("f{i}").as_str().into(), v))
                        .collect::<Vec<(AttrName, OValue)>>(),
                )
            }),
        ]
    })
}

/// Random type expressions over classes Pa/Pb with all constructors.
fn arb_type() -> impl Strategy<Value = TypeExpr> {
    let leaf = prop_oneof![
        Just(TypeExpr::Base),
        Just(TypeExpr::Empty),
        Just(TypeExpr::class("PropA")),
        Just(TypeExpr::class("PropB")),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(TypeExpr::set_of),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TypeExpr::union(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| TypeExpr::inter(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| { TypeExpr::tuple([("g0", a), ("g1", b)]) }),
        ]
    })
}

fn sample_universe() -> (Vec<Constant>, ClassMap) {
    let mut cm = ClassMap::default();
    cm.classes.insert(
        ClassName::new("PropA"),
        BTreeSet::from([Oid::from_raw(100)]),
    );
    cm.classes.insert(
        ClassName::new("PropB"),
        BTreeSet::from([Oid::from_raw(200)]),
    );
    (vec![Constant::int(0), Constant::int(1)], cm)
}

/// Values to probe type membership with.
fn probe_values(cm: &ClassMap, consts: &[Constant]) -> Vec<OValue> {
    let base: Vec<OValue> = consts
        .iter()
        .cloned()
        .map(OValue::Const)
        .chain([
            OValue::oid(Oid::from_raw(100)),
            OValue::oid(Oid::from_raw(200)),
        ])
        .collect();
    let mut out = base.clone();
    // Tuples and sets over the base values.
    for a in &base {
        for b in &base {
            out.push(OValue::tuple([("g0", a.clone()), ("g1", b.clone())]));
            out.push(OValue::set([a.clone(), b.clone()]));
        }
        out.push(OValue::set([a.clone()]));
    }
    out.push(OValue::empty_set());
    out.push(OValue::unit());
    let _ = cm;
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // -------------------------------------------------------------
    // O-values
    // -------------------------------------------------------------

    #[test]
    fn pure_ovalues_convert_to_algebra_values(v in arb_pure_ovalue()) {
        // Oid-free o-values are exactly the algebra's complex values.
        let cv = iql::algebra::from_ovalue(&v).expect("pure value converts");
        prop_assert_eq!(iql::algebra::to_ovalue(&cv), v);
    }

    #[test]
    fn ovalue_rename_roundtrip(v in arb_ovalue_with_oids()) {
        // Renaming by a bijection and back is the identity.
        let map: BTreeMap<Oid, Oid> =
            (0..4).map(|i| (Oid::from_raw(i), Oid::from_raw(i + 10))).collect();
        let back: BTreeMap<Oid, Oid> = map.iter().map(|(a, b)| (*b, *a)).collect();
        prop_assert_eq!(v.rename_oids(&map).rename_oids(&back), v);
    }

    #[test]
    fn ovalue_size_positive_and_oids_sound(v in arb_ovalue_with_oids()) {
        prop_assert!(v.size() >= 1);
        let mut oids = BTreeSet::new();
        v.collect_oids(&mut oids);
        for o in &oids {
            prop_assert!(v.mentions_oid(*o));
        }
        prop_assert!(!v.mentions_oid(Oid::from_raw(999)));
    }

    #[test]
    fn without_oid_removes_all_traces(v in arb_ovalue_with_oids()) {
        let target = Oid::from_raw(1);
        match v.without_oid(target) {
            Some(clean) => prop_assert!(!clean.mentions_oid(target)),
            None => prop_assert!(v.mentions_oid(target)),
        }
    }

    // -------------------------------------------------------------
    // Types (Proposition 2.2.1)
    // -------------------------------------------------------------

    #[test]
    fn intersection_free_preserves_membership(t in arb_type()) {
        let (consts, cm) = sample_universe();
        let free = t.intersection_free_disjoint();
        prop_assert!(free.is_intersection_free());
        for v in probe_values(&cm, &consts) {
            prop_assert_eq!(t.member(&v, &cm), free.member(&v, &cm),
                "value {} distinguishes {} from {}", v, t, free);
        }
    }

    #[test]
    fn intersection_reduce_preserves_membership(t in arb_type()) {
        let (consts, cm) = sample_universe();
        let reduced = t.intersection_reduce();
        prop_assert!(reduced.is_intersection_reduced());
        for v in probe_values(&cm, &consts) {
            prop_assert_eq!(t.member(&v, &cm), reduced.member(&v, &cm));
        }
    }

    #[test]
    fn intersection_reduce_holds_over_nondisjoint_assignments(t in arb_type()) {
        // Proposition 2.2.1(1) claims equivalence over ALL oid assignments,
        // disjoint or not — probe with an overlapping ClassMap.
        let mut cm = ClassMap::default();
        let shared = Oid::from_raw(300);
        cm.classes.insert(ClassName::new("PropA"), BTreeSet::from([Oid::from_raw(100), shared]));
        cm.classes.insert(ClassName::new("PropB"), BTreeSet::from([Oid::from_raw(200), shared]));
        let consts = vec![Constant::int(0), Constant::int(1)];
        let reduced = t.intersection_reduce();
        let mut probes = probe_values(&cm, &consts);
        probes.push(OValue::oid(shared));
        probes.push(OValue::tuple([("g0", OValue::oid(shared)), ("g1", OValue::int(0))]));
        probes.push(OValue::set([OValue::oid(shared)]));
        for v in probes {
            prop_assert_eq!(
                t.member(&v, &cm),
                reduced.member(&v, &cm),
                "non-disjoint assignment distinguishes {} from {} at {}", t, reduced, v
            );
        }
    }

    #[test]
    fn normalization_is_canonical(t in arb_type()) {
        // Normalizing twice gives the same normal form.
        let once = t.intersection_free_disjoint();
        let twice = once.intersection_free_disjoint();
        prop_assert!(once.equivalent_disjoint(&twice));
        prop_assert!(t.equivalent_disjoint(&once));
    }

    #[test]
    fn subtype_is_sound(a in arb_type(), b in arb_type()) {
        let (consts, cm) = sample_universe();
        if iql::lang::typecheck::subtype(&a, &b) {
            for v in probe_values(&cm, &consts) {
                if a.member(&v, &cm) {
                    prop_assert!(b.member(&v, &cm),
                        "subtype({}, {}) held but {} ∈ a \\ b", a, b, v);
                }
            }
        }
        // Union injections are always subtypes.
        prop_assert!(iql::lang::typecheck::subtype(&a, &TypeExpr::union(a.clone(), b.clone())));
        prop_assert!(iql::lang::typecheck::subtype(&b, &TypeExpr::union(a.clone(), b.clone())));
    }

    #[test]
    fn enumeration_agrees_with_membership(t in arb_type()) {
        let (consts, cm) = sample_universe();
        let u = EnumUniverse { constants: &consts, classes: &cm, budget: 2048 };
        if let Ok(values) = t.enumerate(&u) {
            for v in &values {
                prop_assert!(t.member(v, &cm), "enumerated {} ∉ ⟦{}⟧", v, t);
            }
            // Deduplicated.
            let set: BTreeSet<_> = values.iter().collect();
            prop_assert_eq!(set.len(), values.len());
        }
    }

    // -------------------------------------------------------------
    // Oid generation
    // -------------------------------------------------------------

    #[test]
    fn oidgen_never_repeats(reserve in 0u64..1000, n in 1usize..50) {
        let mut g = OidGen::new();
        g.reserve_above(Oid::from_raw(reserve));
        let mut seen = BTreeSet::new();
        for _ in 0..n {
            let o = g.fresh();
            prop_assert!(o.raw() > reserve);
            prop_assert!(seen.insert(o));
        }
    }

    // -------------------------------------------------------------
    // Algebra
    // -------------------------------------------------------------

    #[test]
    fn nest_unnest_inverse(pairs in prop::collection::btree_set((0i64..6, 0i64..6), 1..20)) {
        use iql::algebra::{nest, unnest, Rel, Value};
        let rel: Rel = pairs
            .iter()
            .map(|(a, b)| Value::tuple([("ka", Value::int(*a)), ("vb", Value::int(*b))]))
            .collect();
        let nested = nest(&rel, "vb".into());
        let back = unnest(&nested, "vb".into());
        prop_assert_eq!(back, rel);
    }

    #[test]
    fn powerset_has_right_size(elems in prop::collection::btree_set(0i64..30, 0..7usize)) {
        use iql::algebra::{powerset, Rel, Value};
        let rel: Rel = elems.iter().map(|i| Value::int(*i)).collect();
        let ps = powerset(&rel);
        prop_assert_eq!(ps.len(), 1usize << rel.len());
        // Every subset is a subset.
        for s in &ps {
            prop_assert!(s.is_subset(&rel));
        }
    }

    // -------------------------------------------------------------
    // Datalog engines agree
    // -------------------------------------------------------------

    #[test]
    fn naive_and_seminaive_agree(edges in prop::collection::btree_set((0i64..8, 0i64..8), 1..24)) {
        let prog = iql::datalog::parse_program(
            "Tc(x, y) :- Edge(x, y). Tc(x, z) :- Tc(x, y), Edge(y, z).",
        ).unwrap();
        let mut db = iql::datalog::Database::new();
        for (s, d) in &edges {
            db.insert("Edge", vec![Constant::int(*s), Constant::int(*d)]).unwrap();
        }
        let (a, _) = iql::datalog::eval(&prog, &db, iql::datalog::Strategy::Naive).unwrap();
        let (b, _) = iql::datalog::eval(&prog, &db, iql::datalog::Strategy::SemiNaive).unwrap();
        prop_assert_eq!(&a, &b);
        // The worker pool merges in deterministic order: same database out.
        for threads in [2usize, 4, 8] {
            let (c, stats) = iql::datalog::eval_with(
                &prog, &db, iql::datalog::Strategy::SemiNaive, threads,
            ).unwrap();
            prop_assert_eq!(&b, &c);
            prop_assert_eq!(stats.threads, threads);
        }
    }

    // -------------------------------------------------------------
    // Value-based model
    // -------------------------------------------------------------

    #[test]
    fn psi_phi_identity_on_random_rings(perm in prop::collection::vec(0usize..6, 2..6)) {
        use iql::vtree::{phi, psi, vinstances_equal, Node, VInstance, VSchema};
        let class = ClassName::new("PropRing");
        let schema = VSchema::new([(
            class,
            TypeExpr::tuple([
                ("tag", TypeExpr::base()),
                ("next", TypeExpr::set_of(TypeExpr::class("PropRing"))),
            ]),
        )]).unwrap();
        let n = perm.len();
        let mut vinst = VInstance::new(&schema);
        let slots: Vec<_> = (0..n).map(|_| vinst.forest.reserve()).collect();
        for (i, p) in perm.iter().enumerate() {
            let tag = vinst.forest.add_const(Constant::int((p % 3) as i64));
            let next = vinst.forest.add_set([slots[(i + 1) % n]]);
            vinst.forest.set_node(
                slots[i],
                Node::Tuple(
                    [("tag", tag), ("next", next)]
                        .map(|(a, id)| (AttrName::new(a), id))
                        .into(),
                ),
            );
            vinst.add(class, slots[i]);
        }
        vinst.validate(&schema).unwrap();
        let (obj, _) = phi(&schema, &vinst).unwrap();
        obj.validate().unwrap();
        let back = psi(&obj).unwrap();
        prop_assert!(vinstances_equal(&back, &vinst));
    }

    // -------------------------------------------------------------
    // Isomorphism
    // -------------------------------------------------------------

    #[test]
    fn renamed_instances_are_isomorphic(vals in prop::collection::btree_set(0i64..20, 1..10)) {
        use iql::model::iso::are_o_isomorphic;
        use std::sync::Arc;
        let schema = SchemaBuilder::new()
            .class("PropP", TypeExpr::set_of(TypeExpr::base()))
            .build()
            .unwrap()
            .into_shared();
        let mut inst = Instance::new(Arc::clone(&schema));
        let p = ClassName::new("PropP");
        for chunk in vals.iter().collect::<Vec<_>>().chunks(3) {
            let o = inst.create_oid(p).unwrap();
            for v in chunk {
                inst.add_set_member(o, OValue::int(**v)).unwrap();
            }
        }
        let objects: Vec<Oid> = inst.objects().into_iter().collect();
        let map: BTreeMap<Oid, Oid> = objects
            .iter()
            .enumerate()
            .map(|(i, o)| (*o, Oid::from_raw(500 + i as u64)))
            .collect();
        let renamed = inst.rename_oids(&map).unwrap();
        prop_assert!(are_o_isomorphic(&inst, &renamed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn seminaive_agrees_with_naive_iql(
        edges in prop::collection::btree_set((0usize..7, 0usize..7), 1..20)
    ) {
        // The delta-driven evaluator must be observationally identical to
        // the paper's naive evaluator — on plain Datalog, on negation, and
        // on the invention-heavy graph transformation.
        use iql::lang::programs::{graph_to_class_program, transitive_closure_program, unreachable_program};
        use iql::model::iso::are_o_isomorphic;
        use std::sync::Arc;
        let edges: Vec<(String, String)> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (format!("n{a}"), format!("n{b}")))
            .collect();
        prop_assume!(!edges.is_empty());
        let naive = EvalConfig::builder().seminaive(false).build();
        let semi = EvalConfig::default();
        for (prog, rel, attrs) in [
            (transitive_closure_program(), "Edge", ("src", "dst")),
            (unreachable_program(), "Edge", ("src", "dst")),
            (graph_to_class_program(), "R", ("src", "dst")),
        ] {
            let mut input = Instance::new(Arc::clone(&prog.input));
            for (s, d) in &edges {
                input
                    .insert(
                        RelName::new(rel),
                        OValue::tuple([(attrs.0, OValue::str(s)), (attrs.1, OValue::str(d))]),
                    )
                    .unwrap();
            }
            if prog.input.has_relation(RelName::new("Source")) {
                input
                    .insert(
                        RelName::new("Source"),
                        OValue::tuple([("node", OValue::str(&edges[0].0))]),
                    )
                    .unwrap();
            }
            let a = run(&prog, &input, &naive).unwrap();
            let b = run(&prog, &input, &semi).unwrap();
            prop_assert!(
                are_o_isomorphic(&a.output, &b.output),
                "naive and semi-naive disagree"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Determinacy as a property (slower: fewer cases)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn graph_transform_is_determinate(
        edges in prop::collection::btree_set((0usize..8, 0usize..8), 1..16)
    ) {
        use iql::lang::programs::graph_to_class_program;
        use iql::model::iso::are_o_isomorphic;
        use std::sync::Arc;
        let prog = graph_to_class_program();
        let edges: Vec<(String, String)> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (format!("n{a}"), format!("n{b}")))
            .collect();
        prop_assume!(!edges.is_empty());
        let build = |order: &[(String, String)]| {
            let mut input = Instance::new(Arc::clone(&prog.input));
            for (s, d) in order {
                input
                    .insert(
                        RelName::new("R"),
                        OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                    )
                    .unwrap();
            }
            input
        };
        let mut rev = edges.clone();
        rev.reverse();
        let o1 = run(&prog, &build(&edges), &EvalConfig::default()).unwrap();
        let o2 = run(&prog, &build(&rev), &EvalConfig::default()).unwrap();
        prop_assert!(are_o_isomorphic(&o1.output, &o2.output));
    }
}

// ---------------------------------------------------------------------
// Parallel evaluation is bit-identical to sequential
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_eval_is_bit_identical(
        edges in prop::collection::btree_set((0usize..8, 0usize..8), 1..20)
    ) {
        // Not just isomorphic: the deterministic merge must reproduce the
        // *same* instance as sequential evaluation — same invented-oid
        // numbers, same facts, same report counters — on invention-heavy
        // programs. This is the correctness contract of the worker pool.
        use iql::lang::programs::{
            graph_to_class_program, parallel_join_program, transitive_closure_program,
            unreachable_program,
        };
        use iql::model::iso::are_o_isomorphic;
        use std::sync::Arc;
        let edges: Vec<(String, String)> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (format!("n{a}"), format!("n{b}")))
            .collect();
        prop_assume!(!edges.is_empty());
        for (prog, rel, attrs) in [
            (graph_to_class_program(), "R", ("src", "dst")),
            (parallel_join_program(), "Edge", ("src", "dst")),
            (transitive_closure_program(), "Edge", ("src", "dst")),
            (unreachable_program(), "Edge", ("src", "dst")),
        ] {
            let mut input = Instance::new(Arc::clone(&prog.input));
            for (s, d) in &edges {
                input
                    .insert(
                        RelName::new(rel),
                        OValue::tuple([(attrs.0, OValue::str(s)), (attrs.1, OValue::str(d))]),
                    )
                    .unwrap();
            }
            if prog.input.has_relation(RelName::new("Source")) {
                input
                    .insert(
                        RelName::new("Source"),
                        OValue::tuple([("node", OValue::str(&edges[0].0))]),
                    )
                    .unwrap();
            }
            let sequential = run(&prog, &input, &EvalConfig::default()).unwrap();
            for (seminaive, threads) in
                [(true, 2usize), (true, 4), (true, 8), (false, 4)]
            {
                let cfg = EvalConfig::builder().threads(threads).seminaive(seminaive).build();
                let par = run(&prog, &input, &cfg).unwrap();
                if seminaive {
                    // Same strategy, more workers: everything matches,
                    // including the full fixpoint and the counters.
                    prop_assert_eq!(
                        sequential.full.ground_facts(),
                        par.full.ground_facts(),
                        "full instance drift in {} at {} threads", prog, threads
                    );
                    prop_assert_eq!(
                        sequential.report.counters(),
                        par.report.counters(),
                        "report drift in {} at {} threads", prog, threads
                    );
                } else {
                    // Different strategy: oids may be numbered differently,
                    // but outputs still agree up to isomorphism.
                    prop_assert!(
                        are_o_isomorphic(&sequential.output, &par.output),
                        "naive-parallel disagrees in {} at {} threads", prog, threads
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Cost-based planning is a pure optimization
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn planner_and_indexes_are_pure_optimizations(
        edges in prop::collection::btree_set((0usize..8, 0usize..8), 1..20)
    ) {
        // Every cell of the planner×index×plan-cache on/off matrix must
        // produce the bit-identical EvalOutput — same output facts, same
        // full fixpoint, same semantic counters. Plan order, probe choice,
        // and plan reuse may only change *how* the valuations are found,
        // never *which*.
        use iql::lang::programs::{
            graph_to_class_program, parallel_join_program, skewed_join_program,
            transitive_closure_program, unreachable_program,
        };
        use std::sync::Arc;
        let edges: Vec<(String, String)> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (format!("n{a}"), format!("n{b}")))
            .collect();
        prop_assume!(!edges.is_empty());
        let mut inputs: Vec<(Program, Instance)> = Vec::new();
        for (prog, rel, attrs) in [
            (graph_to_class_program(), "R", ("src", "dst")),
            (parallel_join_program(), "Edge", ("src", "dst")),
            (transitive_closure_program(), "Edge", ("src", "dst")),
            (unreachable_program(), "Edge", ("src", "dst")),
        ] {
            let mut input = Instance::new(Arc::clone(&prog.input));
            for (s, d) in &edges {
                input
                    .insert(
                        RelName::new(rel),
                        OValue::tuple([(attrs.0, OValue::str(s)), (attrs.1, OValue::str(d))]),
                    )
                    .unwrap();
            }
            if prog.input.has_relation(RelName::new("Source")) {
                input
                    .insert(
                        RelName::new("Source"),
                        OValue::tuple([("node", OValue::str(&edges[0].0))]),
                    )
                    .unwrap();
            }
            inputs.push((prog, input));
        }
        // The skewed three-way join: reuse the edges as (Big, Mid, Tiny).
        {
            let prog = skewed_join_program();
            let mut input = Instance::new(Arc::clone(&prog.input));
            for (i, (s, d)) in edges.iter().enumerate() {
                for (rel, a1, a2) in
                    [("Big", "k", "v"), ("Mid", "k", "w"), ("Tiny", "w", "t")]
                {
                    if rel != "Tiny" || i % 3 == 0 {
                        input
                            .insert(
                                RelName::new(rel),
                                OValue::tuple([
                                    (a1, OValue::str(s)),
                                    (a2, OValue::str(d)),
                                ]),
                            )
                            .unwrap();
                    }
                }
            }
            inputs.push((prog, input));
        }
        for (prog, input) in &inputs {
            let base = run(prog, input, &EvalConfig::default()).unwrap();
            for planner in [true, false] {
                for index in [true, false] {
                    for cache in [true, false] {
                        let cfg = EvalConfig::builder()
                            .planner(planner)
                            .index(index)
                            .plan_cache(cache)
                            .build();
                        let arm = run(prog, input, &cfg).unwrap();
                        prop_assert_eq!(
                            base.output.ground_facts(),
                            arm.output.ground_facts(),
                            "output drift in {} at planner={} index={} cache={}",
                            prog, planner, index, cache
                        );
                        prop_assert_eq!(
                            base.full.ground_facts(),
                            arm.full.ground_facts(),
                            "full-instance drift in {} at planner={} index={} cache={}",
                            prog, planner, index, cache
                        );
                        prop_assert_eq!(
                            base.report.counters(),
                            arm.report.counters(),
                            "counter drift in {} at planner={} index={} cache={}",
                            prog, planner, index, cache
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hash-consed value store: intern/resolve round-trip and injectivity
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `resolve(intern(v)) == v` for arbitrary o-values, including ones
    /// that mention oids. The arena is a lossless mirror of the tree.
    #[test]
    fn intern_resolve_roundtrip(v in arb_ovalue_with_oids()) {
        use iql::model::{ValueInterner, ValueReader, ValueStore};
        let mut store = ValueStore::new();
        let id = store.intern(&v);
        prop_assert_eq!(store.resolve(id), v.clone());
        // Interning is idempotent: the same tree maps to the same id.
        prop_assert_eq!(store.intern(&v), id);
    }

    /// Interning is injective on canonical forms: two values get the same
    /// id exactly when they are equal as o-values. This is the O(1)
    /// equality contract every downstream layer relies on.
    #[test]
    fn intern_is_injective(
        a in arb_ovalue_with_oids(),
        b in arb_ovalue_with_oids(),
    ) {
        use iql::model::{ValueInterner, ValueStore};
        let mut store = ValueStore::new();
        let ia = store.intern(&a);
        let ib = store.intern(&b);
        prop_assert_eq!(ia == ib, a == b, "id equality must mirror value equality");
    }

    /// Pure (oid-free) values have an empty cached oid set; values built
    /// around a known oid report it. The metadata drives `objects(I)` and
    /// the isomorphism refinement, so it must be exact.
    #[test]
    fn cached_oid_metadata_is_exact(v in arb_ovalue_with_oids()) {
        use iql::model::{ValueInterner, ValueReader, ValueStore};
        use std::collections::BTreeSet;
        let mut store = ValueStore::new();
        let id = store.intern(&v);
        let mut expected = BTreeSet::new();
        v.collect_oids(&mut expected);
        let cached: BTreeSet<Oid> = store.oids(id).iter().copied().collect();
        prop_assert_eq!(cached, expected);
    }
}

// ---------------------------------------------------------------------
// Resource governor: tight budgets never panic, abort deterministically
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random inputs under a random tight governor: the run never panics,
    /// always returns, aborts only for a budget that was actually set, and
    /// the partial result is (a) identical at every thread count and
    /// (b) a subset of the un-governed fixpoint — i.e. a consistent
    /// prefix of the run it interrupted.
    #[test]
    fn tight_governor_aborts_cleanly_and_deterministically(
        edges in prop::collection::btree_set((0usize..8, 0usize..8), 1..16),
        max_steps in 1usize..12,
        max_facts in 4usize..40,
        max_oids in 1usize..24,
    ) {
        use iql::lang::eval::run_governed;
        use iql::lang::programs::{graph_to_class_program, transitive_closure_program};
        use iql::prelude::{AbortReason, RunOutcome};
        use std::sync::Arc;
        let edges: Vec<(String, String)> = edges
            .into_iter()
            .filter(|(a, b)| a != b)
            .map(|(a, b)| (format!("n{a}"), format!("n{b}")))
            .collect();
        prop_assume!(!edges.is_empty());
        let gfacts = |inst: &Instance| {
            let mut v: Vec<String> =
                inst.ground_facts().iter().map(|f| f.to_string()).collect();
            v.sort();
            v
        };
        for (prog, rel) in [
            (graph_to_class_program(), "R"),
            (transitive_closure_program(), "Edge"),
        ] {
            let mut input = Instance::new(Arc::clone(&prog.input));
            for (s, d) in &edges {
                input
                    .insert(
                        RelName::new(rel),
                        OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
                    )
                    .unwrap();
            }
            let full = run(&prog, &input, &EvalConfig::default()).unwrap();
            let full_facts = gfacts(&full.full);
            let mut results: Vec<(Option<AbortReason>, Vec<String>)> = Vec::new();
            for threads in [1usize, 4] {
                let cfg = EvalConfig::builder()
                    .threads(threads)
                    .max_steps(max_steps)
                    .max_facts(max_facts)
                    .max_oids(max_oids)
                    .build();
                // Never an Err, never a panic — a trip degrades gracefully.
                let outcome = run_governed(&prog, &input, &cfg).unwrap();
                results.push(match outcome {
                    RunOutcome::Complete(out) => (None, gfacts(&out.full)),
                    RunOutcome::Aborted(a) => {
                        prop_assert!(
                            matches!(
                                a.reason,
                                AbortReason::StepLimit { .. }
                                    | AbortReason::FactBudget { .. }
                                    | AbortReason::OidBudget { .. }
                            ),
                            "aborted for a budget that was never set: {:?}", a.reason
                        );
                        // `max_steps` limits each stage; `at_step` counts
                        // steps across stages, so a later stage can trip
                        // with a larger cumulative count.
                        prop_assert!(
                            a.at_step <= max_steps * prog.stages.len(),
                            "at_step {} vs per-stage limit {} over {} stages",
                            a.at_step, max_steps, prog.stages.len()
                        );
                        (Some(a.reason), gfacts(&a.partial.full))
                    }
                });
            }
            let (reason1, partial1) = &results[0];
            let (reason4, partial4) = &results[1];
            prop_assert_eq!(reason1, reason4, "trip reason depends on thread count");
            prop_assert_eq!(partial1, partial4, "partial result depends on thread count");
            for fact in partial1 {
                prop_assert!(
                    full_facts.contains(fact),
                    "partial fact {} is not in the un-governed fixpoint", fact
                );
            }
        }
    }

    /// A random (tiny) deadline on an invention-heavy program: never a
    /// panic, never an `Err`, and a deadline trip reports an elapsed time
    /// in the same order of magnitude as the deadline itself.
    #[test]
    fn random_deadlines_degrade_gracefully(
        edges in prop::collection::btree_set((0usize..10, 0usize..10), 4..24),
        deadline_ms in 1u64..20,
    ) {
        use iql::lang::eval::run_governed;
        use iql::lang::programs::graph_to_class_program;
        use iql::prelude::{AbortReason, RunOutcome};
        use std::sync::Arc;
        use std::time::Duration;
        let prog = graph_to_class_program();
        let mut input = Instance::new(Arc::clone(&prog.input));
        for (s, d) in &edges {
            input
                .insert(
                    RelName::new("R"),
                    OValue::tuple([
                        ("src", OValue::str(&format!("n{s}"))),
                        ("dst", OValue::str(&format!("n{d}"))),
                    ]),
                )
                .unwrap();
        }
        let cfg = EvalConfig::builder()
            .threads(4)
            .deadline(Duration::from_millis(deadline_ms))
            .build();
        match run_governed(&prog, &input, &cfg).unwrap() {
            RunOutcome::Complete(_) => {} // beat the clock — fine
            RunOutcome::Aborted(a) => {
                prop_assert_eq!(a.reason, AbortReason::Deadline);
                prop_assert!(
                    a.elapsed < Duration::from_millis(2 * deadline_ms + 100),
                    "deadline of {}ms only tripped after {:?}", deadline_ms, a.elapsed
                );
            }
        }
    }
}

/// Regression for the paper's Section 2 Genesis instance: ν(adam) and
/// ν(eve) mention each other's oids (spouse fields), so the *instance* is
/// cyclic even though every interned value is a finite DAG — oid leaves
/// cut the cycle. Interning each ν-value must round-trip and stay stable.
#[test]
fn cyclic_nu_values_intern_losslessly() {
    use iql::model::instance::genesis_instance;
    use iql::model::{ValueInterner, ValueReader, ValueStore};
    let (inst, _oids) = genesis_instance();
    let mut fresh = ValueStore::new();
    for o in inst.objects() {
        let Some(vid) = inst.value_id(o) else {
            continue;
        };
        let v = inst.store().resolve(vid);
        assert_eq!(inst.value(o), Some(&v), "id mirror drifted from ν");
        let re = fresh.intern(&v);
        assert_eq!(fresh.resolve(re), v, "round-trip through a fresh store");
        assert_eq!(fresh.intern(&v), re, "re-interning is stable");
    }
}
