//! Integration tests pinning the fine points of IQL's semantics
//! (Section 3.2) and the db-transformation properties (Definition 4.1.1).

use iql::model::iso::are_o_isomorphic;
use iql::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn cfg() -> EvalConfig {
    EvalConfig::default()
}

// ---------------------------------------------------------------------
// Genericity (Definition 4.1.1, condition 3)
// ---------------------------------------------------------------------

#[test]
fn programs_are_generic_under_constant_renaming() {
    // h a D-isomorphism ⇒ (hI, hJ) ∈ g: run on renamed input, expect the
    // renamed output (up to O-isomorphism).
    let prog = iql::lang::programs::graph_to_class_program();
    let mut input = Instance::new(Arc::clone(&prog.input));
    for (s, d) in [("a", "b"), ("b", "c"), ("c", "a")] {
        input
            .insert(
                RelName::new("R"),
                OValue::tuple([("src", OValue::str(s)), ("dst", OValue::str(d))]),
            )
            .unwrap();
    }
    let out = run(&prog, &input, &cfg()).unwrap();

    let h: BTreeMap<Constant, Constant> = [("a", "x"), ("b", "y"), ("c", "z")]
        .into_iter()
        .map(|(from, to)| (Constant::str(from), Constant::str(to)))
        .collect();
    let renamed_input = input.rename_constants(&h).unwrap();
    let out_h = run(&prog, &renamed_input, &cfg()).unwrap();
    let expected = out.output.rename_constants(&h).unwrap();
    assert!(
        are_o_isomorphic(&out_h.output, &expected),
        "g(hI) ≅ h(g(I)) — the program does not interpret constants"
    );
}

// ---------------------------------------------------------------------
// Weak assignment, condition (†)
// ---------------------------------------------------------------------

#[test]
fn conflicting_parallel_assignments_are_ignored() {
    // Two rules derive different values for the same oid in the same step:
    // (†) ignores both, and the value stays undefined at the fixpoint.
    let unit = parse_unit(
        r#"
        schema {
          class P: [v: D];
          relation Src: [a: D];
        }
        program {
          input P, Src;
          output P;
          x^ = [v: "left"]  :- P(x), Src(s);
          x^ = [v: "right"] :- P(x), Src(s);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let o = input.create_oid(ClassName::new("P")).unwrap();
    input
        .insert(
            RelName::new("Src"),
            OValue::tuple([("a", OValue::str("go"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    assert!(
        out.output.value(o).is_none(),
        "ambiguous parallel derivations leave ν undefined (condition †)"
    );
}

#[test]
fn first_assignment_wins_forever() {
    // Stage 1 defines ν(x); stage 2 derives a different value — ignored.
    let unit = parse_unit(
        r#"
        schema {
          class P: [v: D];
          relation Src: [a: D];
        }
        program {
          input P, Src;
          output P;
          stage {
            x^ = [v: "first"] :- P(x), Src(s);
          }
          stage {
            x^ = [v: "second"] :- P(x), Src(s);
          }
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let o = input.create_oid(ClassName::new("P")).unwrap();
    input
        .insert(
            RelName::new("Src"),
            OValue::tuple([("a", OValue::str("go"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    assert_eq!(
        out.output.value(o),
        Some(&OValue::tuple([("v", OValue::str("first"))])),
        "no further changes are made to ν(x) once defined"
    );
}

#[test]
fn agreeing_parallel_assignments_apply() {
    // Two rules derive the SAME value: a single distinct fact — applied.
    let unit = parse_unit(
        r#"
        schema {
          class P: [v: D];
          relation Src: [a: D];
        }
        program {
          input P, Src;
          output P;
          x^ = [v: s] :- P(x), Src(s);
          x^ = [v: t] :- P(x), Src(t);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let o = input.create_oid(ClassName::new("P")).unwrap();
    input
        .insert(
            RelName::new("Src"),
            OValue::tuple([("a", OValue::str("only"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    assert_eq!(
        out.output.value(o),
        Some(&OValue::tuple([("v", OValue::str("only"))]))
    );
}

// ---------------------------------------------------------------------
// Invention (valuation-maps)
// ---------------------------------------------------------------------

#[test]
fn parallel_inventions_are_pairwise_distinct() {
    // One rule, k valuations, two invention variables each: 2k distinct
    // oids in a single step ("all inventions happen in parallel, producing
    // distinct oids for each parallel branch").
    let unit = parse_unit(
        r#"
        schema {
          relation Src: [a: D];
          relation Out: [a: D, p: P, q: P];
          class P: [];
        }
        program {
          input Src;
          output Out, P;
          Out(a, p, q) :- Src(a);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    for i in 0..5 {
        input
            .insert(RelName::new("Src"), OValue::tuple([("a", OValue::int(i))]))
            .unwrap();
    }
    let out = run(&prog, &input, &cfg()).unwrap();
    assert_eq!(out.report.invented, 10);
    assert_eq!(out.output.class(ClassName::new("P")).unwrap().len(), 10);
    assert_eq!(
        out.report.steps, 2,
        "all invention happens in one step (+1 to detect fixpoint)"
    );
}

#[test]
fn invention_guard_stops_reinvention() {
    // Re-running the same rule never re-invents: the extension check finds
    // the existing fact.
    let unit = parse_unit(
        r#"
        schema {
          relation Src: [a: D];
          relation Out: [a: D, p: P];
          class P: [];
        }
        program {
          input Src;
          output Out, P;
          Out(a, p) :- Src(a);
          Out(a, p) :- Src(a), Src(b);
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    for i in 0..3 {
        input
            .insert(RelName::new("Src"), OValue::tuple([("a", OValue::int(i))]))
            .unwrap();
    }
    let out = run(&prog, &input, &cfg()).unwrap();
    // In step 1 the valuation-map hands DISTINCT oids to every (rule, θ):
    // rule 1 fires per a (3), rule 2 per (a, b) pair (9) — 12 inventions.
    // From step 2 on, the "no extension satisfies the head" guard finds
    // the existing facts and nothing more is ever invented.
    assert_eq!(out.output.class(ClassName::new("P")).unwrap().len(), 12);
    assert_eq!(out.report.invented, 12);
    assert_eq!(
        out.report.steps, 2,
        "one productive step, one fixpoint check"
    );
}

// ---------------------------------------------------------------------
// Undefinedness (valuations must be defined on their terms)
// ---------------------------------------------------------------------

#[test]
fn literals_over_undefined_dereferences_do_not_fire() {
    let unit = parse_unit(
        r#"
        schema {
          class P: [v: D];
          relation Known: [x: P];
          relation NotSelf: [x: P];
        }
        program {
          input P;
          output Known, NotSelf;
          Known(x) :- P(x), x^ = [v: n];
          NotSelf(x) :- P(x), x^ != [v: "me"];
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    let p = ClassName::new("P");
    let defined = input.create_oid(p).unwrap();
    let _undefined = input.create_oid(p).unwrap();
    input
        .define_value(defined, OValue::tuple([("v", OValue::str("hello"))]))
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    // Both queries silently skip the undefined oid: the valuation is not
    // defined on x̂ for it (Section 3.2, "Satisfaction").
    assert_eq!(out.output.relation(RelName::new("Known")).unwrap().len(), 1);
    assert_eq!(
        out.output.relation(RelName::new("NotSelf")).unwrap().len(),
        1
    );
}

// ---------------------------------------------------------------------
// Set-pattern matching (the coercion programs rely on it)
// ---------------------------------------------------------------------

#[test]
fn set_literal_patterns_match_bijectively() {
    let unit = parse_unit(
        r#"
        schema {
          relation Pairs: [s: {D}];
          relation Split: [a: D, b: D];
        }
        program {
          input Pairs;
          output Split;
          Split(x, y) :- Pairs(S), {x, y} = S, x != y;
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let mut input = Instance::new(Arc::clone(&prog.input));
    input
        .insert(
            RelName::new("Pairs"),
            OValue::tuple([("s", OValue::set([OValue::int(1), OValue::int(2)]))]),
        )
        .unwrap();
    // A singleton can't match a two-element pattern.
    input
        .insert(
            RelName::new("Pairs"),
            OValue::tuple([("s", OValue::set([OValue::int(9)]))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    // {1,2} splits as (1,2) and (2,1).
    assert_eq!(out.output.relation(RelName::new("Split")).unwrap().len(), 2);
}

// ---------------------------------------------------------------------
// Output projection discipline
// ---------------------------------------------------------------------

#[test]
fn output_is_a_projection_of_the_fixpoint() {
    let prog = iql::lang::programs::graph_to_class_program();
    let mut input = Instance::new(Arc::clone(&prog.input));
    input
        .insert(
            RelName::new("R"),
            OValue::tuple([("src", OValue::str("a")), ("dst", OValue::str("b"))]),
        )
        .unwrap();
    let out = run(&prog, &input, &cfg()).unwrap();
    // Temporaries (R0, Rp, Pp) exist in the fixpoint but not the output.
    assert!(out.full.relation(RelName::new("R0")).is_ok());
    assert!(out.output.relation(RelName::new("R0")).is_err());
    assert!(out.full.class(ClassName::new("Pp")).is_ok());
    assert!(out.output.class(ClassName::new("Pp")).is_err());
    out.output.validate().unwrap();
}

#[test]
fn bad_input_schema_is_rejected() {
    let prog = iql::lang::programs::transitive_closure_program();
    // Hand the program an instance of the WRONG schema.
    let other = SchemaBuilder::new()
        .relation("Whatever", TypeExpr::base())
        .build()
        .unwrap()
        .into_shared();
    let input = Instance::new(other);
    let err = run(&prog, &input, &cfg()).unwrap_err();
    assert!(matches!(err, iql::lang::IqlError::BadInput(_)));
}

// ---------------------------------------------------------------------
// Copies machinery (Section 4.2) through the public API
// ---------------------------------------------------------------------

#[test]
fn copies_and_elimination_roundtrip() {
    use iql::lang::completeness::{check_instance_with_copies, eliminate_copies, make_copies};
    let (genesis, _) = iql::model::instance::genesis_instance();
    let with_copies = make_copies(&genesis, 3).unwrap();
    assert_eq!(
        check_instance_with_copies(&with_copies, &genesis).unwrap(),
        3
    );
    let one = eliminate_copies(&with_copies, genesis.schema()).unwrap();
    assert!(are_o_isomorphic(&one, &genesis));
}
