//! Integration tests for the type system's paper-specific corners:
//! the worked equivalences of Section 2.2, the `*`-interpretation of
//! Section 6.2, inheritance validation, and typing failures surfaced
//! through the full parse → check pipeline.

#![deny(deprecated)]

use iql::model::inherit::{star_intersect, university_schema};
use iql::model::{ClassMap, ClassName, Oid};
use iql::prelude::*;

fn d() -> TypeExpr {
    TypeExpr::base()
}

#[test]
fn paper_worked_equivalences() {
    // [A1:D, A2:{P1}] ∧ [A1:D, A2:{P2}]  ≡disjoint  [A1:D, A2:{∅}]
    let lhs = TypeExpr::inter(
        TypeExpr::tuple([
            ("A1", d()),
            ("A2", TypeExpr::set_of(TypeExpr::class("TsP1"))),
        ]),
        TypeExpr::tuple([
            ("A1", d()),
            ("A2", TypeExpr::set_of(TypeExpr::class("TsP2"))),
        ]),
    );
    let rhs = TypeExpr::tuple([("A1", d()), ("A2", TypeExpr::set_of(TypeExpr::empty()))]);
    assert!(lhs.equivalent_disjoint(&rhs));

    // ({D} ∨ P1) ∧ P2 ≡disjoint ∅
    let t = TypeExpr::inter(
        TypeExpr::union(TypeExpr::set_of(d()), TypeExpr::class("TsP1")),
        TypeExpr::class("TsP2"),
    );
    assert!(t.equivalent_disjoint(&TypeExpr::empty()));

    // [A1: ∅] ≡ ∅ but {∅} ≢ ∅ — the paper's explicit caution.
    assert!(TypeExpr::tuple([("A1", TypeExpr::empty())]).equivalent_disjoint(&TypeExpr::empty()));
    assert!(!TypeExpr::set_of(TypeExpr::empty()).equivalent_disjoint(&TypeExpr::empty()));
}

#[test]
fn empty_set_inhabits_set_of_empty() {
    let cm = ClassMap::default();
    let t = TypeExpr::set_of(TypeExpr::empty());
    assert!(t.member(&OValue::empty_set(), &cm));
    assert!(!t.member(&OValue::set([OValue::int(1)]), &cm));
    // And [] inhabits [] only.
    assert!(TypeExpr::unit().member(&OValue::unit(), &cm));
    assert!(!TypeExpr::unit().member(&OValue::empty_set(), &cm));
}

#[test]
fn star_interpretation_merges_records() {
    // Section 6.2: [A1:D,A2:D] ∧* [A2:D,A3:D] = [A1:D,A2:D,A3:D].
    let a = TypeExpr::tuple([("A1", d()), ("A2", d())]);
    let b = TypeExpr::tuple([("A2", d()), ("A3", d())]);
    let m = star_intersect(&a, &b);
    assert_eq!(m, TypeExpr::tuple([("A1", d()), ("A2", d()), ("A3", d())]));
    // Under the plain interpretation the same intersection is empty.
    assert!(TypeExpr::inter(a.clone(), b.clone()).equivalent_disjoint(&TypeExpr::empty()));
    // member_star admits wider records.
    let cm = ClassMap::default();
    let wide = OValue::tuple([
        ("A1", OValue::int(1)),
        ("A2", OValue::int(2)),
        ("extra", OValue::int(9)),
    ]);
    assert!(a.member_star(&wide, &cm));
    assert!(!a.member(&wide, &cm));
}

#[test]
fn conflicting_diamond_inheritance_collapses_to_empty() {
    // Ta isa Student & Instructor where the two give the same field
    // incompatible structures: the merged field type is empty, so the
    // merged record is the empty type.
    use iql::model::{IsaHierarchy, SchemaWithIsa};
    let schema = SchemaBuilder::new()
        .class("DmP", TypeExpr::unit())
        .class("DmA", TypeExpr::tuple([("f", d())]))
        .class("DmB", TypeExpr::tuple([("f", TypeExpr::set_of(d()))]))
        .class("DmC", TypeExpr::unit())
        .build()
        .unwrap();
    let mut isa = IsaHierarchy::new();
    isa.add(ClassName::new("DmC"), ClassName::new("DmA"));
    isa.add(ClassName::new("DmC"), ClassName::new("DmB"));
    let s = SchemaWithIsa::new(schema, isa).unwrap();
    let merged = s.merged_type(ClassName::new("DmC")).unwrap();
    assert!(merged.equivalent_disjoint(&TypeExpr::empty()));
}

#[test]
fn university_instance_validates_only_with_inheritance() {
    let uni = university_schema();
    let mut inst = Instance::new(std::sync::Arc::new(uni.schema.clone()));
    let ta = inst.create_oid(ClassName::new("Ta")).unwrap();
    inst.define_value(
        ta,
        OValue::tuple([
            ("name", OValue::str("t")),
            ("course_taken", OValue::str("x")),
            ("course_taught", OValue::str("y")),
        ]),
    )
    .unwrap();
    // Raw validation fails: T(Ta) is [] and the value is a 3-record.
    assert!(inst.validate().is_err());
    // Inheritance-aware validation succeeds.
    uni.validate_instance(&inst).unwrap();
}

#[test]
fn type_errors_surface_through_the_parser() {
    // Membership over a non-set term.
    let err = parse_unit(
        r#"
        schema {
          relation R: [a: D];
          relation S: [a: D];
        }
        program {
          input R;
          output S;
          S(y) :- R(x), x(y);
        }
        "#,
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("non-set") || msg.contains("type"), "{msg}");

    // Head fact of the wrong type.
    let err = parse_unit(
        r#"
        schema {
          relation R: [a: D];
          relation S: [a: {D}];
        }
        program {
          input R;
          output S;
          S(x) :- R(x);
        }
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("type"), "{err}");

    // Invention variable with a non-class type.
    let err = parse_unit(
        r#"
        schema {
          relation R: [a: D];
          relation S: [a: D, b: D];
        }
        program {
          input R;
          output S;
          S(x, y) :- R(x);
        }
        "#,
    )
    .unwrap_err();
    assert!(err.to_string().contains("class type"), "{err}");
}

#[test]
fn enumeration_covers_class_and_tuple_mixes() {
    let mut cm = ClassMap::default();
    cm.classes.insert(
        ClassName::new("EnP"),
        [Oid::from_raw(1), Oid::from_raw(2)].into(),
    );
    let consts = vec![Constant::int(0)];
    let t = TypeExpr::tuple([
        ("k", d()),
        ("who", TypeExpr::class("EnP")),
        ("tags", TypeExpr::set_of(d())),
    ]);
    let u = iql::model::EnumUniverse {
        constants: &consts,
        classes: &cm,
        budget: 1 << 12,
    };
    let vals = t.enumerate(&u).unwrap();
    // 1 constant × 2 oids × 2 subsets of a 1-element domain.
    assert_eq!(vals.len(), 4);
    for v in &vals {
        assert!(t.member(v, &cm));
    }
}

#[test]
fn subtype_rejects_width_and_depth_violations() {
    use iql::lang::typecheck::subtype;
    let narrow = TypeExpr::tuple([("a", d())]);
    let wide = TypeExpr::tuple([("a", d()), ("b", d())]);
    // Tuple types are invariant in width under the plain interpretation.
    assert!(!subtype(&narrow, &wide));
    assert!(!subtype(&wide, &narrow));
    // Sets are covariant.
    assert!(subtype(
        &TypeExpr::set_of(narrow.clone()),
        &TypeExpr::set_of(TypeExpr::union(narrow, wide)),
    ));
}
