//! Integration tests for the value-based model (Section 7) through the
//! public API: regularity, equality-by-value, translation laws, and the
//! IQLv pipeline over richer schemas.

use iql::model::{AttrName, ClassName, Constant, TypeExpr};
use iql::vtree::*;

fn c(n: &str) -> ClassName {
    ClassName::new(n)
}

/// A schema of streams: label + set of continuations.
fn stream_schema() -> VSchema {
    VSchema::new([(
        c("VmStream"),
        TypeExpr::tuple([
            ("label", TypeExpr::base()),
            ("next", TypeExpr::set_of(TypeExpr::class("VmStream"))),
        ]),
    )])
    .unwrap()
}

fn mk_stream(vinst: &mut VInstance, label: &str, next: &[NodeId]) -> NodeId {
    let slot = vinst.forest.reserve();
    fill_stream(vinst, slot, label, next);
    slot
}

fn fill_stream(vinst: &mut VInstance, slot: NodeId, label: &str, next: &[NodeId]) {
    let l = vinst.forest.add_const(Constant::str(label));
    let n = vinst.forest.add_set(next.iter().copied());
    vinst.forest.set_node(
        slot,
        Node::Tuple(
            [("label", l), ("next", n)]
                .map(|(a, id)| (AttrName::new(a), id))
                .into(),
        ),
    );
    vinst.add(c("VmStream"), slot);
}

#[test]
fn branching_cyclic_values_roundtrip() {
    // A diamond with a back edge: a → {b, c}; b → {d}; c → {d}; d → {a}.
    let schema = stream_schema();
    let mut vinst = VInstance::new(&schema);
    let a = vinst.forest.reserve();
    let b = vinst.forest.reserve();
    let cc = vinst.forest.reserve();
    let dd = vinst.forest.reserve();
    fill_stream(&mut vinst, a, "a", &[b, cc]);
    fill_stream(&mut vinst, b, "b", &[dd]);
    fill_stream(&mut vinst, cc, "c", &[dd]);
    fill_stream(&mut vinst, dd, "d", &[a]);
    vinst.add(c("VmStream"), a);
    vinst.validate(&schema).unwrap();

    let (obj, oid_of) = phi(&schema, &vinst).unwrap();
    assert_eq!(obj.class(c("VmStream")).unwrap().len(), 4);
    assert_eq!(oid_of.len(), 4);
    let back = psi(&obj).unwrap();
    assert!(vinstances_equal(&back, &vinst));
}

#[test]
fn bisimilar_branches_collapse() {
    // Two nodes with the same label whose next-sets are bisimilar denote
    // the same pure value even across different fanouts with duplicates.
    let schema = stream_schema();
    let mut vinst = VInstance::new(&schema);
    let sink = mk_stream(&mut vinst, "sink", &[]);
    let one = mk_stream(&mut vinst, "x", &[sink]);
    // A second presentation of "x" whose next set mentions two *distinct
    // nodes* that are bisimilar to sink.
    let sink2 = mk_stream(&mut vinst, "sink", &[]);
    let two = mk_stream(&mut vinst, "x", &[sink, sink2]);
    assert!(
        vinst.forest.equal(one, two),
        "duplicate set members collapse"
    );
    let canon = vinst.canonicalize();
    // sink/sink2 and one/two collapse: 2 distinct values.
    assert_eq!(canon.size(), 2);
}

#[test]
fn unfold_respects_depth_budget() {
    let schema = stream_schema();
    let mut vinst = VInstance::new(&schema);
    let a = vinst.forest.reserve();
    fill_stream(&mut vinst, a, "loop", &[a]);
    let shallow = vinst.forest.unfold(a, 2).to_string();
    let deep = vinst.forest.unfold(a, 6).to_string();
    assert!(shallow.len() < deep.len());
    assert!(deep.matches("loop").count() >= 2);
}

#[test]
fn regularity_bounds_distinct_subtrees() {
    // Proposition 7.1.3: every pure value in a v-instance has finitely many
    // distinct subtrees — and minimization makes the bound tight.
    let schema = stream_schema();
    let mut vinst = VInstance::new(&schema);
    let mut prev: Vec<NodeId> = vec![];
    for i in 0..6 {
        let s = mk_stream(&mut vinst, &format!("n{i}"), &prev);
        prev = vec![s];
    }
    vinst.validate(&schema).unwrap();
    let canon = vinst.canonicalize();
    let root = *canon.classes[&c("VmStream")].iter().next().unwrap();
    // Root sees ≤ forest-size distinct subtrees; all finite.
    assert!(canon.forest.distinct_subtrees(root) <= canon.forest.len());
}

#[test]
fn iqlv_with_invention_creates_value_level_objects() {
    // An IQLv query whose IQL realization invents oids — the output is
    // still purely value-based: invention is invisible after ψ
    // (Theorem 7.1.5: "oids lose all semantic denotation").
    let unit = iql::lang::parser::parse_unit(
        r#"
        schema {
          class VmStream: [label: D, next: {VmStream}];
          class Pairmk: [fst: VmStream, snd: VmStream];
          relation Tmp: [a: VmStream, b: VmStream, p: Pairmk];
        }
        program {
          input VmStream;
          output Pairmk, VmStream;
          stage {
            Tmp(a, b, p) :- VmStream(a), VmStream(b);
          }
          stage {
            p^ = [fst: a, snd: b] :- Tmp(a, b, p);
          }
        }
        "#,
    )
    .unwrap();
    let prog = unit.program.unwrap();
    let schema = stream_schema();
    let mut vinst = VInstance::new(&schema);
    let s1 = mk_stream(&mut vinst, "u", &[]);
    let _s2 = mk_stream(&mut vinst, "v", &[s1]);
    vinst.validate(&schema).unwrap();
    let out = run_on_values(&prog, &schema, &vinst, &iql::lang::EvalConfig::default()).unwrap();
    // 2 streams → 4 ordered pairs as pure values.
    assert_eq!(out.classes[&c("Pairmk")].len(), 4);
    // Streams preserved.
    assert_eq!(out.classes[&c("VmStream")].len(), 2);
}

#[test]
fn dot_export_is_valid_graphviz_shape() {
    let schema = stream_schema();
    let mut vinst = VInstance::new(&schema);
    let a = vinst.forest.reserve();
    fill_stream(&mut vinst, a, "n", &[a]);
    let dot = vinst.forest.to_dot(&[a]);
    assert!(dot.starts_with("digraph"));
    assert!(dot.trim_end().ends_with('}'));
    assert_eq!(dot.matches("digraph").count(), 1);
}

#[test]
fn v_schema_conditions_enforced() {
    // T(P) a bare class name is rejected (Def 7.1.1 condition 1).
    assert!(matches!(
        VSchema::new([
            (c("VsA"), TypeExpr::class("VsB")),
            (c("VsB"), TypeExpr::unit()),
        ]),
        Err(VError::BareClassType(_))
    ));
    // v-types admit no ∅/∨/∧.
    assert!(!is_v_type(&TypeExpr::empty()));
    assert!(!is_v_type(&TypeExpr::union(
        TypeExpr::base(),
        TypeExpr::base()
    )));
    assert!(!is_v_type(&TypeExpr::inter(
        TypeExpr::base(),
        TypeExpr::base()
    )));
    assert!(is_v_type(&TypeExpr::set_of(TypeExpr::tuple([(
        "x",
        TypeExpr::base()
    )]))));
}
